// Ablation (extension, paper §9): simulation bootstrap vs the closed-form
// (analytic) estimator, across trial counts, on the SBI query (Conviva C1).
//
// The paper notes the analytical bootstrap [39] is orthogonal and can
// replace simulation to estimate variation ranges. This bench quantifies
// the trade-off on our engine: per-run latency, failure recoveries, tuples
// recomputed, and the relative error the estimator reports at the 25% mark
// (simulation and closed form should agree on the uncertainty magnitude).

#include <cstdio>

#include "bench_util.h"

using namespace iolap;  // NOLINT — bench brevity

int main() {
  auto catalog = ConvivaBenchCatalog();
  if (!catalog.ok()) {
    std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
    return 1;
  }
  const BenchQuery query = FindConvivaQuery("c1");

  bench::Header("Ablation (estimator)",
                "bootstrap trial count vs analytic closed form, Conviva C1",
                "estimator\ttrials\ttotal_s\trecomputed\tfailures\t"
                "rel_stddev_at_25pct");

  auto run = [&](ErrorMethod method, int trials) -> int {
    EngineOptions options = BenchOptions(ExecutionMode::kIolap);
    options.error_method = method;
    options.num_trials = trials;
    double rel_at_25 = -1.0;
    auto outcome = RunBenchQuery(
        *catalog, query, options, [&](const PartialResult& partial) {
          if (rel_at_25 < 0 && partial.fraction_processed >= 0.25 &&
              !partial.estimates.empty()) {
            rel_at_25 = partial.estimates[0][0].rel_stddev;
          }
          return BatchAction::kContinue;
        });
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\t%d\t%.4f\t%llu\t%d\t%.5f\n",
                method == ErrorMethod::kAnalytic ? "analytic" : "bootstrap",
                method == ErrorMethod::kAnalytic ? 0 : trials,
                outcome->metrics.TotalLatencySec(),
                static_cast<unsigned long long>(
                    outcome->metrics.TotalRecomputedRows()),
                outcome->metrics.TotalFailureRecoveries(), rel_at_25);
    return 0;
  };

  for (int trials : {20, 50, 100, 200}) {
    if (run(ErrorMethod::kBootstrap, trials) != 0) return 1;
  }
  if (run(ErrorMethod::kAnalytic, 0) != 0) return 1;
  std::printf("# expected: analytic matches the bootstrap's reported error "
              "within sampling noise at a fraction of the latency; both "
              "remain exact (differential tests assert exactness).\n");
  return 0;
}
