// Figure 10(c): Conviva operator state sizes kept by iOLAP.
// Figure 10(d): Conviva data shipped — baseline vs iOLAP total and
// per-batch.
//
// Paper shapes: all operators (including JOIN — the Conviva fact table is
// denormalized, so joins are against small derived relations) keep at most
// a few hundred KB-equivalent of state; iOLAP-total carries a bounded
// overhead over the baseline and per-batch traffic is 1–2 orders of
// magnitude smaller.
//
// The iOLAP pass runs sharded (S = 4): shipped columns are *measured*
// ExchangeLayer wire bytes, with the old virtual-worker cost model's
// prediction alongside as modeled_KB.

#include <cstdio>

#include "bench_util.h"

using namespace iolap;  // NOLINT — bench brevity

int main() {
  struct Row {
    std::string id;
    uint64_t join_state = 0;
    uint64_t other_state_avg = 0;
    uint64_t other_state_peak = 0;
    uint64_t baseline_shipped = 0;
    uint64_t iolap_total = 0;
    uint64_t per_batch_avg = 0;
    uint64_t per_batch_max = 0;
    uint64_t modeled_shipped = 0;
  };
  std::vector<Row> rows;
  // Shares BENCH_fig7.json with the latency benches; Flush() merges by
  // name, so only the fig10_* series is replaced here.
  bench::JsonWriter json("BENCH_fig7.json");
  auto catalog = ConvivaBenchCatalog();
  if (!catalog.ok()) {
    std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
    return 1;
  }
  for (const BenchQuery& query : ConvivaQueries()) {
    auto baseline =
        RunBenchQuery(*catalog, query, BenchOptions(ExecutionMode::kBaseline));
    EngineOptions iolap_options = BenchOptions(ExecutionMode::kIolap);
    iolap_options.num_shards = 4;
    auto iolap_run = RunBenchQuery(*catalog, query, iolap_options);
    if (!baseline.ok() || !iolap_run.ok()) {
      std::fprintf(stderr, "%s failed\n", query.id.c_str());
      return 1;
    }
    Row row;
    row.id = query.id;
    row.join_state = iolap_run->metrics.PeakJoinStateBytes();
    row.other_state_avg =
        static_cast<uint64_t>(iolap_run->metrics.AvgOtherStateBytes());
    row.other_state_peak = iolap_run->metrics.PeakOtherStateBytes();
    // The baseline runs unsharded (no wire), so its shuffle volume is the
    // cost model's charge — the number the paper's cluster baseline ships.
    row.baseline_shipped = baseline->metrics.TotalModeledShippedBytes();
    row.iolap_total = iolap_run->metrics.TotalShippedBytes();
    row.per_batch_avg =
        static_cast<uint64_t>(iolap_run->metrics.AvgShippedBytesPerBatch());
    row.per_batch_max = iolap_run->metrics.MaxShippedBytesPerBatch();
    row.modeled_shipped = iolap_run->metrics.TotalModeledShippedBytes();
    rows.push_back(row);

    const double baseline_s = baseline->metrics.TotalLatencySec();
    const double iolap_s = iolap_run->metrics.TotalLatencySec();
    json.AddWithExchange(
        "fig10_conviva_" + query.id + "_baseline", baseline_s,
        baseline->metrics.TotalCpuSec(),
        baseline_s > 0 ? bench::TotalInputRows(baseline->metrics) / baseline_s
                       : 0.0,
        BenchThreads(), baseline->metrics);
    json.AddWithExchange(
        "fig10_conviva_" + query.id + "_iolap_s4", iolap_s,
        iolap_run->metrics.TotalCpuSec(),
        iolap_s > 0 ? bench::TotalInputRows(iolap_run->metrics) / iolap_s
                    : 0.0,
        BenchThreads(), iolap_run->metrics);
  }

  bench::Header("Figure 10(c)", "Conviva operator state sizes kept by iOLAP",
                "query\tjoin_state_KB\tother_state_avg_KB\t"
                "other_state_peak_KB");
  for (const Row& row : rows) {
    std::printf("%s\t%.1f\t%.1f\t%.1f\n", row.id.c_str(),
                row.join_state / 1e3, row.other_state_avg / 1e3,
                row.other_state_peak / 1e3);
  }
  std::printf("\n");
  bench::Header("Figure 10(d)", "Conviva data shipped at query time (S=4)",
                "query\tbaseline_modeled_KB\tiolap_measured_KB\tiolap_modeled_KB\t"
                "per_batch_avg_KB\tper_batch_max_KB");
  for (const Row& row : rows) {
    std::printf("%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n", row.id.c_str(),
                row.baseline_shipped / 1e3, row.iolap_total / 1e3,
                row.modeled_shipped / 1e3,
                row.per_batch_avg / 1e3, row.per_batch_max / 1e3);
  }
  return json.Flush() ? 0 : 1;
}
