// Ablation (extension, paper Appendix B): the viewlet-transformation
// query-decomposition rewrite, on the Appendix B Example 4 shape —
// SUM(A·D) over two streamed-scale relations joined on a key.
//
// Expected: the rewrite collapses the join's cached state from the input
// cardinalities to the per-key partial-sum relations (orders of magnitude)
// while the incremental latency stays comparable or improves.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"

using namespace iolap;  // NOLINT — bench brevity

int main() {
  // Appendix B Example 4: R(A, B) ⋈ S(C, D) on B = C, SUM(A * D).
  Rng rng(11);
  auto catalog = std::make_shared<Catalog>();
  Table r(Schema({{"a", ValueType::kDouble}, {"b", ValueType::kInt64}}));
  const size_t rows = static_cast<size_t>(20000 * BenchScale());
  for (size_t i = 0; i < rows; ++i) {
    r.AddRow({Value::Double(rng.NextDouble() * 10),
              Value::Int64(static_cast<int64_t>(rng.NextBounded(64)))});
  }
  Table s(Schema({{"c", ValueType::kInt64}, {"d", ValueType::kDouble}}));
  for (size_t i = 0; i < rows / 2; ++i) {
    s.AddRow({Value::Int64(static_cast<int64_t>(rng.NextBounded(64))),
              Value::Double(rng.NextDouble() * 5)});
  }
  if (!catalog->RegisterTable("r", std::move(r), /*streamed=*/true).ok() ||
      !catalog->RegisterTable("s", std::move(s), false).ok()) {
    std::fprintf(stderr, "catalog setup failed\n");
    return 1;
  }

  const BenchQuery query{"exB4",
                         "SELECT sum(a * d) AS total FROM r, s WHERE b = c",
                         "r", false};

  bench::Header("Ablation (Appendix B rewrite)",
                "query decomposition on SUM(A*D) over R ⋈ S",
                "variant\ttotal_s\tpeak_join_state_KB\tpeak_other_state_KB\t"
                "shipped_MB");
  for (bool rewrite : {false, true}) {
    EngineOptions options = BenchOptions(ExecutionMode::kIolap);
    options.apply_rewrite_rules = rewrite;
    auto outcome = RunBenchQuery(catalog, query, options);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\t%.4f\t%.1f\t%.1f\t%.1f\n",
                rewrite ? "decomposed" : "original",
                outcome->metrics.TotalLatencySec(),
                outcome->metrics.PeakJoinStateBytes() / 1e3,
                outcome->metrics.PeakOtherStateBytes() / 1e3,
                outcome->metrics.TotalShippedBytes() / 1e6);
  }
  return 0;
}
