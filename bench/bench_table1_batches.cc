// Table 1: batch sizes used for the relations that are streamed in.
//
// The paper streams lineorder (11.5 GB / 86M tuples per batch), partsupp
// (7.5 GB / 80M) and customer (2.5 GB / 15M) on a 20-node cluster. This
// bench prints our scaled equivalents: per streamed relation, the default
// per-batch tuple count and payload size under the bench configuration.

#include <cstdio>

#include "bench_util.h"

using namespace iolap;  // NOLINT — bench brevity

int main() {
  bench::Header("Table 1", "batch sizes for the streamed relations",
                "workload\trelation\ttotal_rows\tbatches\trows_per_batch\t"
                "bytes_per_batch");
  const size_t batches = BenchBatches();

  for (const char* table : {"lineorder", "partsupp", "customer"}) {
    auto catalog = TpchCatalogStreaming(table);
    if (!catalog.ok()) {
      std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
      return 1;
    }
    const Table& t = *(*(*catalog)->Find(table))->table;
    std::printf("tpch\t%s\t%zu\t%zu\t%zu\t%zu\n", table, t.num_rows(), batches,
                t.num_rows() / batches, t.ByteSize() / batches);
  }
  auto conviva = ConvivaBenchCatalog();
  if (!conviva.ok()) {
    std::fprintf(stderr, "%s\n", conviva.status().ToString().c_str());
    return 1;
  }
  const Table& sessions = *(*(*conviva)->Find("sessions"))->table;
  std::printf("conviva\tsessions\t%zu\t%zu\t%zu\t%zu\n", sessions.num_rows(),
              batches, sessions.num_rows() / batches,
              sessions.ByteSize() / batches);
  return 0;
}
