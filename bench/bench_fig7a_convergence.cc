// Figure 7(a): relative standard deviation vs query time for Conviva C8,
// with the batch baseline's completion time as the reference point.
//
// Paper shape: the first approximate answer arrives at a small fraction of
// the baseline latency (~6% in the paper), the error decays roughly like
// 1/sqrt(data processed), and updates arrive at a steady per-batch pace.

#include <cstdio>

#include "bench_util.h"

using namespace iolap;  // NOLINT — bench brevity

int main() {
  auto catalog = ConvivaBenchCatalog();
  if (!catalog.ok()) {
    std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
    return 1;
  }
  const BenchQuery query = FindConvivaQuery("c8");

  auto baseline =
      RunBenchQuery(*catalog, query, BenchOptions(ExecutionMode::kBaseline));
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }

  EngineOptions options = BenchOptions(ExecutionMode::kIolap);
  options.num_batches = 40;
  std::vector<double> rel_err;
  auto outcome = RunBenchQuery(*catalog, query, options,
                               [&](const PartialResult& partial) {
                                 rel_err.push_back(
                                     bench::WorstRelStddev(partial));
                                 return BatchAction::kContinue;
                               });
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    return 1;
  }

  bench::Header("Figure 7(a)",
                "relative stdev vs time, Conviva C8 (" + query.sql + ")",
                "batch\ttime_s\trel_stddev\tfraction");
  const auto cumulative = bench::CumulativeLatency(outcome->metrics);
  for (size_t b = 0; b < rel_err.size(); ++b) {
    std::printf("%zu\t%.4f\t%.5f\t%.3f\n", b, cumulative[b], rel_err[b],
                outcome->metrics.batches[b].fraction_processed);
  }
  std::printf("# baseline completes at t=%.4f s (vertical bar in the paper)\n",
              baseline->metrics.TotalLatencySec());
  std::printf("# first approximate answer at t=%.4f s (%.1f%% of baseline)\n",
              cumulative.empty() ? 0.0 : cumulative[0],
              baseline->metrics.TotalLatencySec() > 0 && !cumulative.empty()
                  ? 100.0 * cumulative[0] / baseline->metrics.TotalLatencySec()
                  : 0.0);
  return 0;
}
