#ifndef IOLAP_BENCH_BENCH_UTIL_H_
#define IOLAP_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure-reproduction benches. Every bench binary
// prints the series behind one table/figure of the paper in a stable,
// grep-friendly format:
//
//   # <figure id>: <description>
//   # columns: <tab-separated column names>
//   <rows...>
//
// Absolute numbers differ from the paper (single machine vs a 20-node EC2
// cluster); EXPERIMENTS.md records which *shapes* must hold.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "workloads/experiment_driver.h"

namespace iolap {
namespace bench {

inline void Header(const std::string& figure, const std::string& description,
                   const std::string& columns) {
  std::printf("# %s: %s\n", figure.c_str(), description.c_str());
  std::printf("# columns: %s\n", columns.c_str());
}

/// Worst relative standard deviation across all estimated cells of a
/// partial result (the accuracy measure of Fig. 7).
inline double WorstRelStddev(const PartialResult& partial) {
  double worst = 0.0;
  for (const auto& row : partial.estimates) {
    for (const ErrorEstimate& est : row) {
      worst = std::max(worst, est.rel_stddev);
    }
  }
  return worst;
}

/// Cumulative engine latency after each batch.
inline std::vector<double> CumulativeLatency(const QueryMetrics& metrics) {
  std::vector<double> cumulative;
  double total = 0.0;
  for (const BatchMetrics& b : metrics.batches) {
    total += b.latency_sec;
    cumulative.push_back(total);
  }
  return cumulative;
}

/// Engine latency until `fraction` of the data is processed.
inline double LatencyToFraction(const QueryMetrics& metrics, double fraction) {
  double total = 0.0;
  for (const BatchMetrics& b : metrics.batches) {
    total += b.latency_sec;
    if (b.fraction_processed >= fraction) break;
  }
  return total;
}

/// Smaller catalogs for the mode-comparison benches (HDA re-evaluates all
/// accumulated data each batch, which is exactly the quadratic blow-up the
/// figures demonstrate — run it on a reduced instance to keep the sweep
/// fast).
inline Result<std::shared_ptr<Catalog>> SmallCatalogFor(const BenchQuery& query,
                                                        bool conviva,
                                                        double factor) {
  if (conviva) {
    ConvivaConfig config;
    config = config.Scaled(BenchScale() * factor);
    return MakeConvivaCatalog(config);
  }
  TpchConfig config;
  config = config.Scaled(BenchScale() * factor);
  return MakeTpchCatalog(config, query.streamed_table);
}

}  // namespace bench
}  // namespace iolap

#endif  // IOLAP_BENCH_BENCH_UTIL_H_
