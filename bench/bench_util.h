#ifndef IOLAP_BENCH_BENCH_UTIL_H_
#define IOLAP_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure-reproduction benches. Every bench binary
// prints the series behind one table/figure of the paper in a stable,
// grep-friendly format:
//
//   # <figure id>: <description>
//   # columns: <tab-separated column names>
//   <rows...>
//
// Absolute numbers differ from the paper (single machine vs a 20-node EC2
// cluster); EXPERIMENTS.md records which *shapes* must hold.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "workloads/experiment_driver.h"

// Machine-readable companion output: benches also emit a BENCH_<id>.json
// in the working directory so dashboards and regression scripts don't have
// to parse the human-oriented tab format. Several binaries share
// BENCH_fig7.json (fig7 latency rows, fig9/fig10 exchange rows); Flush()
// merges by row name so each binary replaces only its own series no matter
// which ran last. Uniform row schema:
//   {"name": ..., "wall_sec": ..., "cpu_sec": ..., "rows_per_sec": ...,
//    "threads": ...}
// Rows added with recovery metrics carry additional keys:
//   "recoveries", "max_rollback_depth", "full_restarts",
//   "corrupt_checkpoints", "injected_faults", "frozen_replay_batches",
//   "recoveries_exhausted", "degraded"
// Rows added with exchange metrics carry:
//   "shipped_bytes" (measured ExchangeLayer wire traffic, retransmissions
//   included) and "modeled_bytes" (the old virtual-worker cost model's
//   prediction for the same run, kept so the model's error stays visible)

namespace iolap {
namespace bench {

inline void Header(const std::string& figure, const std::string& description,
                   const std::string& columns) {
  std::printf("# %s: %s\n", figure.c_str(), description.c_str());
  std::printf("# columns: %s\n", columns.c_str());
}

/// Accumulates rows of the uniform schema and writes them as a JSON array
/// to `path` in the working directory. Names are expected to be plain
/// identifiers (bench + query ids); the writer escapes quotes/backslashes
/// anyway so odd names can't corrupt the file.
class JsonWriter {
 public:
  explicit JsonWriter(std::string path) : path_(std::move(path)) {}

  void Add(const std::string& name, double wall_sec, double cpu_sec,
           double rows_per_sec, size_t threads) {
    rows_.push_back(Entry{name, wall_sec, cpu_sec, rows_per_sec, threads});
  }

  /// Same row plus the failure-recovery counters of the run — used by
  /// benches whose runs can recover (an unnoticed recovery storm would
  /// otherwise masquerade as a latency regression).
  void AddWithRecovery(const std::string& name, double wall_sec,
                       double cpu_sec, double rows_per_sec, size_t threads,
                       const QueryMetrics& metrics) {
    Entry e{name, wall_sec, cpu_sec, rows_per_sec, threads};
    e.has_recovery = true;
    e.recoveries = metrics.TotalFailureRecoveries();
    e.max_rollback_depth = metrics.MaxRollbackDepth();
    e.full_restarts = metrics.TotalFullRestarts();
    e.corrupt_checkpoints = metrics.TotalCorruptCheckpoints();
    e.injected_faults = metrics.TotalInjectedFaults();
    e.frozen_replay_batches = metrics.TotalFrozenReplayBatches();
    e.recoveries_exhausted = metrics.TotalRecoveriesExhausted();
    e.degraded = metrics.DegradedMode();
    // Recovery rows come from full engine runs, so the measured-vs-modeled
    // exchange pair is always available — carry it too.
    e.has_exchange = true;
    e.shipped_bytes = metrics.TotalShippedBytes();
    e.modeled_bytes = metrics.TotalModeledShippedBytes();
    rows_.push_back(std::move(e));
  }

  /// Same row plus the measured-vs-modeled exchange byte counts — used by
  /// the shuffle/broadcast memory benches (fig9/fig10) so the cost model's
  /// drift from the wire is a tracked series, not a footnote.
  void AddWithExchange(const std::string& name, double wall_sec,
                       double cpu_sec, double rows_per_sec, size_t threads,
                       const QueryMetrics& metrics) {
    Entry e{name, wall_sec, cpu_sec, rows_per_sec, threads};
    e.has_exchange = true;
    e.shipped_bytes = metrics.TotalShippedBytes();
    e.modeled_bytes = metrics.TotalModeledShippedBytes();
    rows_.push_back(std::move(e));
  }

  /// Writes the file; returns false (and prints to stderr) on I/O failure.
  /// Rows already on disk whose name is not being re-emitted survive the
  /// rewrite verbatim, so bench binaries sharing one file never clobber
  /// each other's series.
  bool Flush() const {
    const std::vector<std::string> kept = KeptExistingLines();
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "[\n");
    const size_t total = kept.size() + rows_.size();
    size_t written = 0;
    for (const std::string& line : kept) {
      ++written;
      std::fprintf(f, "%s%s\n", line.c_str(), written < total ? "," : "");
    }
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Entry& e = rows_[i];
      std::fprintf(f,
                   "  {\"name\": \"%s\", \"wall_sec\": %.9g, "
                   "\"cpu_sec\": %.9g, \"rows_per_sec\": %.1f, "
                   "\"threads\": %zu",
                   Escaped(e.name).c_str(), e.wall_sec, e.cpu_sec,
                   e.rows_per_sec, e.threads);
      if (e.has_exchange) {
        std::fprintf(f,
                     ", \"shipped_bytes\": %llu, \"modeled_bytes\": %llu",
                     static_cast<unsigned long long>(e.shipped_bytes),
                     static_cast<unsigned long long>(e.modeled_bytes));
      }
      if (e.has_recovery) {
        std::fprintf(f,
                     ", \"recoveries\": %d, \"max_rollback_depth\": %d, "
                     "\"full_restarts\": %d, \"corrupt_checkpoints\": %d, "
                     "\"injected_faults\": %d, \"frozen_replay_batches\": %d, "
                     "\"recoveries_exhausted\": %d, \"degraded\": %s",
                     e.recoveries, e.max_rollback_depth, e.full_restarts,
                     e.corrupt_checkpoints, e.injected_faults,
                     e.frozen_replay_batches, e.recoveries_exhausted,
                     e.degraded ? "true" : "false");
      }
      ++written;
      std::fprintf(f, "}%s\n", written < total ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Entry {
    std::string name;
    double wall_sec;
    double cpu_sec;
    double rows_per_sec;
    size_t threads;
    // Optional measured-vs-modeled exchange bytes (AddWithExchange).
    bool has_exchange = false;
    uint64_t shipped_bytes = 0;
    uint64_t modeled_bytes = 0;
    // Optional failure-recovery counters (AddWithRecovery).
    bool has_recovery = false;
    int recoveries = 0;
    int max_rollback_depth = 0;
    int full_restarts = 0;
    int corrupt_checkpoints = 0;
    int injected_faults = 0;
    int frozen_replay_batches = 0;
    int recoveries_exhausted = 0;
    bool degraded = false;
  };

  // Row lines already in the file whose "name" is not among the rows being
  // written. The file is line-oriented (one row object per line, two-space
  // indent), so a string scan suffices — no JSON parser needed. Truncated
  // or unrecognizable lines are dropped rather than preserved blind.
  std::vector<std::string> KeptExistingLines() const {
    std::vector<std::string> kept;
    std::FILE* in = std::fopen(path_.c_str(), "r");
    if (in == nullptr) return kept;
    char buf[4096];
    const std::string prefix = "  {\"name\": \"";
    while (std::fgets(buf, sizeof(buf), in) != nullptr) {
      std::string line(buf);
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      if (line.compare(0, prefix.size(), prefix) != 0) continue;
      std::string name;
      bool closed = false;
      for (size_t i = prefix.size(); i < line.size(); ++i) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          name.push_back(line[i + 1]);
          ++i;
        } else if (line[i] == '"') {
          closed = true;
          break;
        } else {
          name.push_back(line[i]);
        }
      }
      if (!closed) continue;
      bool replaced = false;
      for (const Entry& e : rows_) replaced = replaced || e.name == name;
      if (replaced) continue;
      if (!line.empty() && line.back() == ',') line.pop_back();
      kept.push_back(std::move(line));
    }
    std::fclose(in);
    return kept;
  }

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string path_;
  std::vector<Entry> rows_;
};

/// Input tuples folded in across all batches of a run (the denominator of
/// the JSON rows_per_sec column).
inline uint64_t TotalInputRows(const QueryMetrics& metrics) {
  uint64_t total = 0;
  for (const BatchMetrics& b : metrics.batches) total += b.input_rows;
  return total;
}

/// Worst relative standard deviation across all estimated cells of a
/// partial result (the accuracy measure of Fig. 7).
inline double WorstRelStddev(const PartialResult& partial) {
  double worst = 0.0;
  for (const auto& row : partial.estimates) {
    for (const ErrorEstimate& est : row) {
      worst = std::max(worst, est.rel_stddev);
    }
  }
  return worst;
}

/// Cumulative engine latency after each batch.
inline std::vector<double> CumulativeLatency(const QueryMetrics& metrics) {
  std::vector<double> cumulative;
  double total = 0.0;
  for (const BatchMetrics& b : metrics.batches) {
    total += b.latency_sec;
    cumulative.push_back(total);
  }
  return cumulative;
}

/// Engine latency until `fraction` of the data is processed.
inline double LatencyToFraction(const QueryMetrics& metrics, double fraction) {
  double total = 0.0;
  for (const BatchMetrics& b : metrics.batches) {
    total += b.latency_sec;
    if (b.fraction_processed >= fraction) break;
  }
  return total;
}

/// Smaller catalogs for the mode-comparison benches (HDA re-evaluates all
/// accumulated data each batch, which is exactly the quadratic blow-up the
/// figures demonstrate — run it on a reduced instance to keep the sweep
/// fast).
inline Result<std::shared_ptr<Catalog>> SmallCatalogFor(const BenchQuery& query,
                                                        bool conviva,
                                                        double factor) {
  if (conviva) {
    ConvivaConfig config;
    config = config.Scaled(BenchScale() * factor);
    return MakeConvivaCatalog(config);
  }
  TpchConfig config;
  config = config.Scaled(BenchScale() * factor);
  return MakeTpchCatalog(config, query.streamed_table);
}

}  // namespace bench
}  // namespace iolap

#endif  // IOLAP_BENCH_BENCH_UTIL_H_
