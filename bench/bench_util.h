#ifndef IOLAP_BENCH_BENCH_UTIL_H_
#define IOLAP_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure-reproduction benches. Every bench binary
// prints the series behind one table/figure of the paper in a stable,
// grep-friendly format:
//
//   # <figure id>: <description>
//   # columns: <tab-separated column names>
//   <rows...>
//
// Absolute numbers differ from the paper (single machine vs a 20-node EC2
// cluster); EXPERIMENTS.md records which *shapes* must hold.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "workloads/experiment_driver.h"

// Machine-readable companion output: benches also emit a BENCH_<id>.json
// in the working directory so dashboards and regression scripts don't have
// to parse the human-oriented tab format. Uniform row schema:
//   {"name": ..., "wall_sec": ..., "cpu_sec": ..., "rows_per_sec": ...,
//    "threads": ...}
// Rows added with recovery metrics carry additional keys:
//   "recoveries", "max_rollback_depth", "full_restarts",
//   "corrupt_checkpoints", "injected_faults", "frozen_replay_batches",
//   "recoveries_exhausted", "degraded"

namespace iolap {
namespace bench {

inline void Header(const std::string& figure, const std::string& description,
                   const std::string& columns) {
  std::printf("# %s: %s\n", figure.c_str(), description.c_str());
  std::printf("# columns: %s\n", columns.c_str());
}

/// Accumulates rows of the uniform schema and writes them as a JSON array
/// to `path` in the working directory. Names are expected to be plain
/// identifiers (bench + query ids); the writer escapes quotes/backslashes
/// anyway so odd names can't corrupt the file.
class JsonWriter {
 public:
  explicit JsonWriter(std::string path) : path_(std::move(path)) {}

  void Add(const std::string& name, double wall_sec, double cpu_sec,
           double rows_per_sec, size_t threads) {
    rows_.push_back(Entry{name, wall_sec, cpu_sec, rows_per_sec, threads});
  }

  /// Same row plus the failure-recovery counters of the run — used by
  /// benches whose runs can recover (an unnoticed recovery storm would
  /// otherwise masquerade as a latency regression).
  void AddWithRecovery(const std::string& name, double wall_sec,
                       double cpu_sec, double rows_per_sec, size_t threads,
                       const QueryMetrics& metrics) {
    Entry e{name, wall_sec, cpu_sec, rows_per_sec, threads};
    e.has_recovery = true;
    e.recoveries = metrics.TotalFailureRecoveries();
    e.max_rollback_depth = metrics.MaxRollbackDepth();
    e.full_restarts = metrics.TotalFullRestarts();
    e.corrupt_checkpoints = metrics.TotalCorruptCheckpoints();
    e.injected_faults = metrics.TotalInjectedFaults();
    e.frozen_replay_batches = metrics.TotalFrozenReplayBatches();
    e.recoveries_exhausted = metrics.TotalRecoveriesExhausted();
    e.degraded = metrics.DegradedMode();
    rows_.push_back(std::move(e));
  }

  /// Writes the file; returns false (and prints to stderr) on I/O failure.
  bool Flush() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Entry& e = rows_[i];
      std::fprintf(f,
                   "  {\"name\": \"%s\", \"wall_sec\": %.9g, "
                   "\"cpu_sec\": %.9g, \"rows_per_sec\": %.1f, "
                   "\"threads\": %zu",
                   Escaped(e.name).c_str(), e.wall_sec, e.cpu_sec,
                   e.rows_per_sec, e.threads);
      if (e.has_recovery) {
        std::fprintf(f,
                     ", \"recoveries\": %d, \"max_rollback_depth\": %d, "
                     "\"full_restarts\": %d, \"corrupt_checkpoints\": %d, "
                     "\"injected_faults\": %d, \"frozen_replay_batches\": %d, "
                     "\"recoveries_exhausted\": %d, \"degraded\": %s",
                     e.recoveries, e.max_rollback_depth, e.full_restarts,
                     e.corrupt_checkpoints, e.injected_faults,
                     e.frozen_replay_batches, e.recoveries_exhausted,
                     e.degraded ? "true" : "false");
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Entry {
    std::string name;
    double wall_sec;
    double cpu_sec;
    double rows_per_sec;
    size_t threads;
    // Optional failure-recovery counters (AddWithRecovery).
    bool has_recovery = false;
    int recoveries = 0;
    int max_rollback_depth = 0;
    int full_restarts = 0;
    int corrupt_checkpoints = 0;
    int injected_faults = 0;
    int frozen_replay_batches = 0;
    int recoveries_exhausted = 0;
    bool degraded = false;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string path_;
  std::vector<Entry> rows_;
};

/// Input tuples folded in across all batches of a run (the denominator of
/// the JSON rows_per_sec column).
inline uint64_t TotalInputRows(const QueryMetrics& metrics) {
  uint64_t total = 0;
  for (const BatchMetrics& b : metrics.batches) total += b.input_rows;
  return total;
}

/// Worst relative standard deviation across all estimated cells of a
/// partial result (the accuracy measure of Fig. 7).
inline double WorstRelStddev(const PartialResult& partial) {
  double worst = 0.0;
  for (const auto& row : partial.estimates) {
    for (const ErrorEstimate& est : row) {
      worst = std::max(worst, est.rel_stddev);
    }
  }
  return worst;
}

/// Cumulative engine latency after each batch.
inline std::vector<double> CumulativeLatency(const QueryMetrics& metrics) {
  std::vector<double> cumulative;
  double total = 0.0;
  for (const BatchMetrics& b : metrics.batches) {
    total += b.latency_sec;
    cumulative.push_back(total);
  }
  return cumulative;
}

/// Engine latency until `fraction` of the data is processed.
inline double LatencyToFraction(const QueryMetrics& metrics, double fraction) {
  double total = 0.0;
  for (const BatchMetrics& b : metrics.batches) {
    total += b.latency_sec;
    if (b.fraction_processed >= fraction) break;
  }
  return total;
}

/// Smaller catalogs for the mode-comparison benches (HDA re-evaluates all
/// accumulated data each batch, which is exactly the quadratic blow-up the
/// figures demonstrate — run it on a reduced instance to keep the sweep
/// fast).
inline Result<std::shared_ptr<Catalog>> SmallCatalogFor(const BenchQuery& query,
                                                        bool conviva,
                                                        double factor) {
  if (conviva) {
    ConvivaConfig config;
    config = config.Scaled(BenchScale() * factor);
    return MakeConvivaCatalog(config);
  }
  TpchConfig config;
  config = config.Scaled(BenchScale() * factor);
  return MakeTpchCatalog(config, query.streamed_table);
}

}  // namespace bench
}  // namespace iolap

#endif  // IOLAP_BENCH_BENCH_UTIL_H_
