// Micro-benchmarks (google-benchmark) of the engine's hot paths: the
// per-tuple costs the figure benches aggregate. Useful for regression
// tracking and for understanding where per-batch time goes.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "bootstrap/poisson_multiplicities.h"
#include "bootstrap/trial_accumulator.h"
#include "core/expr.h"
#include "core/function_registry.h"
#include "exec/expr_program.h"
#include "exec/hash_aggregate.h"
#include "exec/operators.h"
#include "workloads/experiment_driver.h"

namespace iolap {
namespace {

// Arithmetic + comparison expression evaluation over a row.
void BM_ExprEval(benchmark::State& state) {
  auto functions = FunctionRegistry::Default();
  EvalContext ctx;
  ctx.functions = functions.get();
  // (price * (1 - discount)) > 1000 AND quantity < 24
  auto expr = And(Gt(Mul(Col(0, "price", ValueType::kDouble),
                         Sub(Lit(1.0), Col(1, "discount", ValueType::kDouble))),
                     Lit(1000.0)),
                  Lt(Col(2, "quantity", ValueType::kDouble), Lit(24.0)));
  Row row = {Value::Double(1500), Value::Double(0.05), Value::Double(10)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr->Eval(row, ctx));
  }
}
BENCHMARK(BM_ExprEval);

// The per-trial hot loop of an uncertain row, interpreter vs compiled
// program. Workload shape: a filter referencing an upstream aggregate (the
// trial-variant part) over a trial-invariant arithmetic subexpression, plus
// two aggregate arguments — what the delta engine evaluates per pending row
// per batch. The compiled variant binds once (hoisted prologue + one
// batched probe) and replays only the epilogue per trial.
class TrialResolver final : public AggLookupResolver {
 public:
  Value Lookup(int, int, const Row&) const override {
    return Value::Double(937.5);
  }
  Value LookupTrial(int, int, const Row&, int trial) const override {
    return Value::Double(937.5 + 0.25 * trial);
  }
  void LookupTrials(int, int, const Row&, int num_trials,
                    Value* out) const override {
    for (int t = 0; t < num_trials; ++t) {
      out[t] = Value::Double(937.5 + 0.25 * t);
    }
  }
  Interval LookupRange(int, int, const Row&) const override {
    return Interval::Unbounded();
  }
};

std::vector<ExprPtr> HotLoopRoots() {
  auto revenue = Mul(Col(0, "price", ValueType::kDouble),
                     Sub(Lit(1.0), Col(1, "discount", ValueType::kDouble)));
  auto lookup = std::make_shared<AggLookupExpr>(
      0, 1, std::vector<ExprPtr>{Col(3, "key", ValueType::kInt64)},
      ValueType::kDouble, "avg_rev");
  // roots[0] = filter, roots[1..2] = aggregate arguments.
  return {And(Gt(revenue, ExprPtr(lookup)),
              Lt(Col(2, "quantity", ValueType::kDouble), Lit(24.0))),
          revenue, Col(2, "quantity", ValueType::kDouble)};
}

const Row kHotLoopRow = {Value::Double(1500), Value::Double(0.05),
                         Value::Double(10), Value::Int64(7)};

void BM_ExprProgramInterpreter(benchmark::State& state) {
  const int trials = static_cast<int>(state.range(0));
  auto functions = FunctionRegistry::Default();
  TrialResolver resolver;
  EvalContext ctx;
  ctx.functions = functions.get();
  ctx.resolver = &resolver;
  const std::vector<ExprPtr> roots = HotLoopRoots();
  for (auto _ : state) {
    for (int t = 0; t < trials; ++t) {
      ctx.trial = t;
      if (roots[0]->Eval(kHotLoopRow, ctx).IsTruthy()) {
        benchmark::DoNotOptimize(roots[1]->Eval(kHotLoopRow, ctx));
        benchmark::DoNotOptimize(roots[2]->Eval(kHotLoopRow, ctx));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * trials);
}
BENCHMARK(BM_ExprProgramInterpreter)->Arg(20)->Arg(100);

void BM_ExprProgramCompiled(benchmark::State& state) {
  const int trials = static_cast<int>(state.range(0));
  auto functions = FunctionRegistry::Default();
  TrialResolver resolver;
  const std::vector<ExprPtr> roots = HotLoopRoots();
  auto program = ExprProgram::Compile(roots, functions.get(), nullptr);
  if (program == nullptr) {
    state.SkipWithError("hot-loop roots did not compile");
    return;
  }
  ExprProgramState prog_state;
  program->InitState(&prog_state);
  std::vector<double> weights(trials);
  std::vector<Value> values(static_cast<size_t>(trials) * 2);
  for (auto _ : state) {
    program->Bind(&prog_state, kHotLoopRow, &resolver, trials);
    for (int t = 0; t < trials; ++t) weights[t] = 1.0;
    benchmark::DoNotOptimize(program->EvalTrials(
        &prog_state, kHotLoopRow, trials, /*pred_root=*/0,
        /*first_val_root=*/1, 2, weights.data(), values.data()));
  }
  state.SetItemsProcessed(state.iterations() * trials);
}
BENCHMARK(BM_ExprProgramCompiled)->Arg(20)->Arg(100);

// The §5 classification check: interval comparison against a variation
// range — the per-tuple cost of tuple-uncertainty partitioning.
void BM_ClassifyPredicate(benchmark::State& state) {
  class FixedResolver final : public AggLookupResolver {
   public:
    Value Lookup(int, int, const Row&) const override {
      return Value::Double(37.0);
    }
    Value LookupTrial(int, int, const Row&, int) const override {
      return Value::Double(37.0);
    }
    Interval LookupRange(int, int, const Row&) const override {
      return Interval(21.1, 53.9);
    }
  };
  static FixedResolver resolver;
  auto functions = FunctionRegistry::Default();
  EvalContext ctx;
  ctx.functions = functions.get();
  ctx.resolver = &resolver;
  auto lookup = std::make_shared<AggLookupExpr>(0, 0, std::vector<ExprPtr>{},
                                                ValueType::kDouble, "avg");
  auto pred = Gt(Col(0, "buffer_time", ValueType::kDouble), ExprPtr(lookup));
  Row row = {Value::Double(58.0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ClassifyPredicate(*pred, row, ctx));
  }
}
BENCHMARK(BM_ClassifyPredicate);

// Deterministic Poisson(1) bootstrap weights for one row across trials.
void BM_PoissonWeights(benchmark::State& state) {
  const int trials = static_cast<int>(state.range(0));
  BootstrapWeights weights(42, trials);
  uint64_t uid = 0;
  for (auto _ : state) {
    int sum = 0;
    for (int t = 0; t < trials; ++t) sum += weights.WeightAt(uid, t);
    benchmark::DoNotOptimize(sum);
    ++uid;
  }
  state.SetItemsProcessed(state.iterations() * trials);
}
BENCHMARK(BM_PoissonWeights)->Arg(20)->Arg(100);

// Folding one tuple into a sketch across all bootstrap trials: the
// dominant per-tuple cost of an online AGGREGATE.
void BM_TrialAccumulate(benchmark::State& state) {
  const int trials = static_cast<int>(state.range(0));
  auto fn = MakeBuiltinAggFunction(AggKind::kAvg);
  TrialAccumulatorSet acc(*fn, trials);
  std::vector<int> weights(trials, 1);
  const Value v = Value::Double(3.25);
  for (auto _ : state) {
    acc.Add(v, 1.0, weights.data());
  }
  state.SetItemsProcessed(state.iterations() * (trials + 1));
}
BENCHMARK(BM_TrialAccumulate)->Arg(0)->Arg(20)->Arg(100);

// Incremental hash-join probe (dimension-cache lookup).
void BM_JoinProbe(benchmark::State& state) {
  JoinStep step({0}, {0}, /*input_grows=*/false, /*prefix_grows=*/true);
  RowBatch dim;
  for (int i = 0; i < 1000; ++i) {
    ExecRow row;
    row.values = {Value::Int64(i), Value::String("payload")};
    dim.push_back(row);
  }
  RowBatch out;
  step.ProcessBatch({}, dim, &out);
  int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(step.ProbeCount({Value::Int64(key % 1000)}));
    ++key;
  }
}
BENCHMARK(BM_JoinProbe);

// Group lookup + accumulate in the grouped sketch.
void BM_GroupedAggregate(benchmark::State& state) {
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{MakeBuiltinAggFunction(AggKind::kSum),
                          Col(0, "x", ValueType::kDouble), "s"});
  GroupedAggregateState groups(&specs, /*num_trials=*/20);
  std::vector<int> weights(20, 1);
  int64_t g = 0;
  for (auto _ : state) {
    auto& cells = groups.GetOrCreate({Value::Int64(g % 64)}, 0);
    cells.aggs[0].Add(Value::Double(1.5), 1.0, weights.data());
    ++g;
  }
}
BENCHMARK(BM_GroupedAggregate);

// End-to-end per-batch engine cost under intra-batch parallelism: each
// iteration runs a full incremental TPC-H query (a nested one, so the
// per-trial re-evaluation of the non-deterministic set dominates) with
// EngineOptions::num_threads = Arg. Results are bit-identical across
// thread counts; only wall time changes. The per_batch_ms counter is the
// engine's own per-batch wall clock and cpu_over_wall its measured
// parallelism (≈1 inline, → num_threads when the batch scales).
void BM_EngineBatch(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const std::vector<BenchQuery> queries = TpchQueries();
  BenchQuery query = queries.front();
  for (const BenchQuery& q : queries) {
    if (q.nested) {
      query = q;
      break;
    }
  }
  auto catalog = TpchCatalogStreaming(query.streamed_table);
  if (!catalog.ok()) {
    state.SkipWithError(catalog.status().ToString().c_str());
    return;
  }
  EngineOptions options = BenchOptions(ExecutionMode::kIolap);
  options.num_threads = threads;
  double wall = 0.0;
  double cpu = 0.0;
  size_t batches = 0;
  for (auto _ : state) {
    auto outcome = RunBenchQuery(*catalog, query, options);
    if (!outcome.ok()) {
      state.SkipWithError(outcome.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(outcome->final_result.rows.num_rows());
    wall += outcome->metrics.TotalLatencySec();
    cpu += outcome->metrics.TotalCpuSec();
    batches += outcome->metrics.batches.size();
  }
  if (batches > 0) {
    state.counters["per_batch_ms"] = 1e3 * wall / static_cast<double>(batches);
    state.counters["cpu_over_wall"] = wall > 0.0 ? cpu / wall : 0.0;
  }
}
BENCHMARK(BM_EngineBatch)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Console output as usual, plus every run appended to BENCH_micro.json in
// the uniform schema (per-iteration seconds; rows_per_sec from
// SetItemsProcessed where the bench declares an item count).
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  // OO_Tabular (not OO_Defaults): the default forces ANSI color even when
  // stdout is redirected into bench_results/*.txt.
  explicit JsonTeeReporter(bench::JsonWriter* json)
      : ConsoleReporter(OO_Tabular), json_(json) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      double rows_per_sec = 0.0;
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) rows_per_sec = it->second;
      json_->Add(run.benchmark_name(), run.real_accumulated_time / iters,
                 run.cpu_accumulated_time / iters, rows_per_sec,
                 static_cast<size_t>(run.threads));
    }
  }

 private:
  bench::JsonWriter* json_;
};

}  // namespace
}  // namespace iolap

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  iolap::bench::JsonWriter json("BENCH_micro.json");
  iolap::JsonTeeReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return json.Flush() ? 0 : 1;
}
