// Figure 8(a)–(d): per-batch latency ratio HDA / iOLAP across batches, for
// simple SPJA and nested queries of both workloads.
// Figure 8(e)/(f): number of tuples recomputed per batch by iOLAP for the
// nested queries.
//
// Paper shapes:
//  - simple SPJA queries: ratio ~1 (iOLAP degenerates to classical delta
//    processing);
//  - nested queries: the ratio grows roughly linearly with the batch
//    number (HDA re-evaluates all accumulated data; iOLAP stays
//    near-constant), flattening for queries whose outer query joins small
//    aggregate relations (Q11/Q20);
//  - iOLAP's recomputed tuples per batch are small and grow sub-linearly.

#include <cstdio>
#include <map>

#include "bench_util.h"

using namespace iolap;  // NOLINT — bench brevity

namespace {

// Reduced instances: HDA's quadratic re-evaluation is the phenomenon under
// measurement; keep the sweep minutes-fast.
constexpr double kScaleFactor = 0.2;
constexpr size_t kBatches = 20;
constexpr int kTrials = 20;

struct Series {
  std::vector<double> hda_latency;
  std::vector<double> iolap_latency;
  std::vector<uint64_t> recomputed;
};

Result<Series> Measure(const BenchQuery& query, bool conviva) {
  static std::map<std::string, Series> cache;
  if (auto it = cache.find(query.id); it != cache.end()) return it->second;
  IOLAP_ASSIGN_OR_RETURN(std::shared_ptr<Catalog> catalog,
                         bench::SmallCatalogFor(query, conviva, kScaleFactor));
  Series series;
  for (ExecutionMode mode : {ExecutionMode::kHda, ExecutionMode::kIolap}) {
    EngineOptions options = BenchOptions(mode);
    options.num_batches = kBatches;
    options.num_trials = kTrials;
    IOLAP_ASSIGN_OR_RETURN(RunOutcome outcome,
                           RunBenchQuery(catalog, query, options));
    for (const BatchMetrics& b : outcome.metrics.batches) {
      if (mode == ExecutionMode::kHda) {
        series.hda_latency.push_back(b.latency_sec);
      } else {
        series.iolap_latency.push_back(b.latency_sec);
        series.recomputed.push_back(b.recomputed_rows);
      }
    }
  }
  cache[query.id] = series;
  return series;
}

int PrintRatios(const char* figure, const std::vector<BenchQuery>& queries,
                bool conviva, bool nested) {
  bench::Header(figure,
                std::string(conviva ? "Conviva" : "TPC-H") + " " +
                    (nested ? "nested" : "simple SPJA") +
                    " queries: HDA/iOLAP per-batch latency ratio",
                "query\tbatch\tratio\thda_ms\tiolap_ms");
  for (const BenchQuery& query : queries) {
    if (query.nested != nested) continue;
    auto series = Measure(query, conviva);
    if (!series.ok()) {
      std::fprintf(stderr, "%s: %s\n", query.id.c_str(),
                   series.status().ToString().c_str());
      return 1;
    }
    const size_t n =
        std::min(series->hda_latency.size(), series->iolap_latency.size());
    for (size_t b = 0; b < n; ++b) {
      const double iolap_ms = series->iolap_latency[b] * 1e3;
      const double hda_ms = series->hda_latency[b] * 1e3;
      std::printf("%s\t%zu\t%.3f\t%.3f\t%.3f\n", query.id.c_str(), b,
                  iolap_ms > 0 ? hda_ms / iolap_ms : 0.0, hda_ms, iolap_ms);
    }
  }
  return 0;
}

int PrintRecomputed(const char* figure, const std::vector<BenchQuery>& queries,
                    bool conviva) {
  bench::Header(figure,
                std::string(conviva ? "Conviva" : "TPC-H") +
                    " nested queries: tuples recomputed per batch (iOLAP)",
                "query\tbatch\trecomputed_tuples");
  for (const BenchQuery& query : queries) {
    if (!query.nested) continue;
    auto series = Measure(query, conviva);
    if (!series.ok()) {
      std::fprintf(stderr, "%s: %s\n", query.id.c_str(),
                   series.status().ToString().c_str());
      return 1;
    }
    for (size_t b = 0; b < series->recomputed.size(); ++b) {
      std::printf("%s\t%zu\t%llu\n", query.id.c_str(), b,
                  static_cast<unsigned long long>(series->recomputed[b]));
    }
  }
  return 0;
}

}  // namespace

int main() {
  int rc = PrintRatios("Figure 8(a)", TpchQueries(), false, false);
  if (rc == 0) {
    std::printf("\n");
    rc = PrintRatios("Figure 8(b)", TpchQueries(), false, true);
  }
  if (rc == 0) {
    std::printf("\n");
    rc = PrintRatios("Figure 8(c)", ConvivaQueries(), true, false);
  }
  if (rc == 0) {
    std::printf("\n");
    rc = PrintRatios("Figure 8(d)", ConvivaQueries(), true, true);
  }
  if (rc == 0) {
    std::printf("\n");
    rc = PrintRecomputed("Figure 8(e)", TpchQueries(), false);
  }
  if (rc == 0) {
    std::printf("\n");
    rc = PrintRecomputed("Figure 8(f)", ConvivaQueries(), true);
  }
  return rc;
}
