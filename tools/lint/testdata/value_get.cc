// iolap_lint fixture: the value-get rule must flag the raw std::get below
// exactly once. Fixtures are input to the lint lexer only and are never
// compiled.
#include <variant>

namespace fixture {

inline long Bad(const std::variant<long, double>& v) {
  return std::get<long>(v);  // finding: value-get
}

inline long Good(const Value& v) {
  // The sanctioned path: typed accessors on Value.
  return v.AsInt();
}

}  // namespace fixture
