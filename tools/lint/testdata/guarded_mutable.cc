// iolap_lint fixture: the guarded-mutable rule must flag the unannotated
// mutable member exactly once. Fixtures are input to the lint lexer only
// and are never compiled.
namespace fixture {

class Cache {
 public:
  int Get(int key) const;

 private:
  Mutex mu_;
  mutable int hits_ = 0;  // finding: guarded-mutable
  mutable int lookups_ IOLAP_GUARDED_BY(mu_) = 0;  // annotated: fine
};

class NoLock {
 public:
  int Peek() const;

 private:
  // No mutex in this class, so `mutable` is a plain caching detail and the
  // rule stays quiet.
  mutable int scratch_ = 0;
};

}  // namespace fixture
