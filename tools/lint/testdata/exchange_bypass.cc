// iolap_lint fixture: the exchange-bypass rule must flag the direct
// ShardState::AbsorbExchangePayload below exactly once. This file's path
// has no tests/bench segment ("testdata" does not count), so the
// exemptions stay out of the way. Fixtures are input to the lint lexer
// only and are never compiled.
namespace fixture {

inline void BypassesExchange(ShardSet* shards, const ExchangeMessage& msg) {
  // Cross-shard state access around the wire: unmeasured, unchecksummed.
  shards->shard(1).AbsorbExchangePayload(msg);  // finding
}

inline void SanctionedSeam(ExchangeLayer* exchange, int batch) {
  // The sanctioned path: ship through the exchange, which checksums,
  // retries, measures, and only then delivers to the destination shard.
  auto shipped = exchange->Ship(ExchangeKind::kPartialAggregate, batch,
                                /*src=*/1, ExchangeMessage::kCoordinator,
                                /*payload_bytes=*/64, /*payload_hash=*/7);
  (void)shipped;
}

inline void SuppressedBypass(ShardSet* shards, const ExchangeMessage& msg) {
  // NOLINTNEXTLINE(exchange-bypass): fixture demonstrates the escape hatch.
  shards->shard(1).AbsorbExchangePayload(msg);
}

}  // namespace fixture
