// Fixture for the failpoint-name rule: this file mimics the inventory
// header (the rule keys on the basename), with one name that is not
// kebab-case. Exactly one finding expected.
#ifndef IOLAP_LINT_TESTDATA_FAILPOINT_NAMES_H_
#define IOLAP_LINT_TESTDATA_FAILPOINT_NAMES_H_

#define IOLAP_FAILPOINT_NAMES(X)              \
  X(kGoodSeam, "good-seam")                   \
  X(kAnotherGoodSeam, "another-good-seam-2")  \
  X(kBadSeam, "Bad_Seam")                     \
  X(kLastSeam, "last-seam")

#endif  // IOLAP_LINT_TESTDATA_FAILPOINT_NAMES_H_
