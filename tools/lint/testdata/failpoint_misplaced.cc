// Fixture for the failpoint-name rule: a second failpoint inventory
// declared outside failpoint_names.h. Exactly one finding expected.

#define IOLAP_FAILPOINT_NAMES(X) \
  X(kRogueSeam, "rogue-seam")

int rogue_inventory_marker = 0;
