// iolap_lint fixture: the verifier-bypass rule must flag the direct
// ExprProgram::Compile below exactly once. This file's path has no tests/
// bench segment ("testdata" does not count), so the exemptions stay out of
// the way. Fixtures are input to the lint lexer only and are never
// compiled.
namespace fixture {

inline void BypassesVerifier(const std::vector<ExprPtr>& roots,
                             const FunctionRegistry* functions) {
  auto program =
      ExprProgram::Compile(roots, functions, nullptr);  // finding
  (void)program;
}

inline void SanctionedSeam(const std::vector<ExprPtr>& roots,
                           const FunctionRegistry* functions) {
  // The sanctioned path: the verifier seam.
  auto program = CompileVerified(roots, functions, nullptr, nullptr);
  (void)program;
}

inline void SuppressedBypass(const std::vector<ExprPtr>& roots,
                             const FunctionRegistry* functions) {
  // NOLINTNEXTLINE(verifier-bypass): fixture demonstrates the escape hatch.
  auto program = ExprProgram::Compile(roots, functions, nullptr);
  (void)program;
}

}  // namespace fixture
