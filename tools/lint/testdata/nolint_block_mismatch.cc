// iolap_lint fixture: a suppression block naming one rule must not silence
// a different rule — the std::get inside the pool-capture block is still
// the single value-get finding, while the bare block below covers all
// rules. (The block-marker spellings never appear in this prose: the lexer
// honors them anywhere on a line.) Fixtures are input to the lint lexer
// only and are never compiled.
#include <variant>

namespace fixture {

// NOLINTBEGIN(pool-capture)
inline long WrongRuleBlock(const std::variant<long, double>& v) {
  return std::get<long>(v);  // finding: value-get (block names another rule)
}
// NOLINTEND(pool-capture)

// NOLINTBEGIN
inline long BareBlock(const std::variant<long, double>& v) {
  return std::get<long>(v);  // bare block covers every rule: silent
}
// NOLINTEND

}  // namespace fixture
