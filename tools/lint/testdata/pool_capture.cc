// iolap_lint fixture: the pool-capture rule must flag the default-capture
// lambda below exactly once. Fixtures are input to the lint lexer only and
// are never compiled, so types may be used without declarations.
namespace fixture {

inline void Bad(ThreadPool& pool) {
  int local = 1;
  pool.Submit([&] { local += 1; });  // finding: pool-capture
  pool.Wait();
}

inline void Good(ThreadPool& pool) {
  int local = 2;
  // Explicit captures are fine — the hazard is the *defaulted* reference.
  pool.Submit([&local] { local += 1; });
  pool.Wait();
}

}  // namespace fixture
