// iolap_lint fixture: lives under an `exec/` path segment so the
// rng-construction rule applies; the direct construction below must be
// flagged exactly once. Fixtures are input to the lint lexer only and are
// never compiled.
namespace fixture {

inline unsigned Bad(unsigned seed) {
  Rng rng(seed);  // finding: rng-construction
  return rng.Next();
}

inline unsigned Good(unsigned seed, int lane) {
  // The sanctioned path: per-lane streams derived from (seed, lane).
  Rng rng = Rng::ForLane(seed, lane);
  return rng.Next();
}

}  // namespace fixture
