// iolap_lint fixture: must produce zero findings. Exercises the NOLINT /
// NOLINTNEXTLINE escape hatch and the shapes each rule deliberately leaves
// alone. Fixtures are input to the lint lexer only and are never compiled.
namespace fixture {

inline void SuppressedCapture(ThreadPool& pool, int total) {
  // NOLINTNEXTLINE(pool-capture): drained before `total` leaves scope.
  pool.Submit([&] { total += 1; });
  pool.Submit([&total] { total += 1; });  // explicit capture: fine
  pool.Wait();
}

inline unsigned SanctionedRng(unsigned seed, int lane) {
  Rng rng = Rng::ForLane(seed, lane);  // factory, not direct construction
  return rng.Next();
}

class Annotated {
 public:
  int Get(int key) const;

 private:
  Mutex mu_;
  mutable int hits_ IOLAP_GUARDED_BY(mu_) = 0;
};

inline long SuppressedGet(const std::variant<long, double>& v) {
  return std::get<long>(v);  // NOLINT(value-get): fixture demonstrates bare escape
}

}  // namespace fixture
