// Fixture for the failpoint-name rule: a duplicated (otherwise well-formed)
// name in an inventory header. Exactly one finding expected.
#ifndef IOLAP_LINT_TESTDATA_FAILPOINT_DUP_FAILPOINT_NAMES_H_
#define IOLAP_LINT_TESTDATA_FAILPOINT_DUP_FAILPOINT_NAMES_H_

#define IOLAP_FAILPOINT_NAMES(X) \
  X(kFirstSeam, "shared-seam")   \
  X(kSecondSeam, "other-seam")   \
  X(kThirdSeam, "shared-seam")

#endif  // IOLAP_LINT_TESTDATA_FAILPOINT_DUP_FAILPOINT_NAMES_H_
