// iolap_lint fixture: block suppression. Two raw std::get calls sit inside
// a value-get block and must be silent; the one after the block closes must
// be the single finding. (The block-marker spellings never appear in this
// prose: the lexer honors them anywhere on a line.) Fixtures are input to
// the lint lexer only and are never compiled.
#include <variant>

namespace fixture {

// NOLINTBEGIN(value-get): this helper is allowed to touch the variant raw.
inline long InsideBlockA(const std::variant<long, double>& v) {
  return std::get<long>(v);
}

inline long InsideBlockB(const std::variant<long, double>& v) {
  return std::get<long>(v);
}
// NOLINTEND(value-get)

inline long OutsideBlock(const std::variant<long, double>& v) {
  return std::get<long>(v);  // finding: value-get
}

}  // namespace fixture
