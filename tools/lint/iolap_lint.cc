// iolap_lint — project-specific static checks the generic toolchain can't
// express, run over a compilation database or a set of files/directories.
//
// The generic layers (Clang -Wthread-safety, clang-tidy, TSan/ASan) catch
// generic bug classes; the rules here encode invariants specific to iOLAP's
// exactness guarantee under intra-batch parallelism (Theorem 1: delta
// updates + uncertainty tags reproduce Q(D_i, m_i) bit-identically at any
// thread count — see docs/INTERNALS.md §7 "Static analysis"):
//
//   pool-capture      No default-capture ([&] / [=]) lambdas handed to
//                     ThreadPool::Submit / SubmitToGroup. A plain-submitted
//                     task can outlive the submitting frame until the next
//                     Wait(); a defaulted reference capture is a dangling
//                     hazard that TSan only sees on the unlucky schedule.
//   value-get         No raw std::get / std::get_if outside value.h /
//                     value.cc (and Result's own variant in status.h).
//                     Typed slot access must go through the Value accessors
//                     so the slot/register-kind bug class stays impossible.
//   rng-construction  No direct Rng construction in engine code (path
//                     contains an `exec` or `iolap` segment). Per-lane
//                     generators must come from Rng::ForLane(seed, lane) so
//                     the random stream is a pure function of (seed, lane),
//                     never of scheduling.
//   guarded-mutable   A `mutable` member of a class that owns a mutex
//                     (iolap::Mutex or std::mutex) must carry
//                     IOLAP_GUARDED_BY / IOLAP_PT_GUARDED_BY — mutable is
//                     how "logically const" races slip past const-ness.
//   failpoint-name    Failpoint names live in exactly one inventory header
//                     (failpoint_names.h), are kebab-case, and are unique.
//                     Fault-injection specs (IOLAP_FAILPOINTS) address
//                     failpoints by name, so a duplicated or oddly-spelled
//                     name silently breaks chaos schedules.
//   verifier-bypass   No direct ExprProgram::Compile outside the compiler's
//                     own files, the verifier seam (program_verifier.cc)
//                     and tests/benchmarks. Engine code goes through
//                     CompileVerified so every compiled program is
//                     statically proven sound before it executes
//                     (docs/INTERNALS.md §10).
//   exchange-bypass   No direct ShardState::AbsorbExchangePayload outside
//                     the exchange layer's own files and tests/benchmarks.
//                     Shard state is mutated only by delivered (checksummed,
//                     retried) exchange messages; a direct call is
//                     shard-to-shard state access around the wire, invisible
//                     to the byte counters and the fault schedules
//                     (docs/INTERNALS.md §11).
//
// Escape hatch: a finding on line L is suppressed by `// NOLINT` or
// `// NOLINT(rule-name)` on line L, or `// NOLINTNEXTLINE(rule-name)` on
// line L-1; a `// NOLINTBEGIN(rule-name)` ... `// NOLINTEND(rule-name)`
// pair suppresses the rule for every line between them (bare NOLINTBEGIN
// covers all rules) — same spellings clang-tidy uses, so one comment can
// satisfy both tools.
//
// Frontend note: the tool lexes translation units with its own minimal
// C++ tokenizer instead of libclang, so it builds and runs anywhere the
// repo builds (the CI image and dev containers do not all ship libclang
// headers). The rules above are token-level properties, chosen so the
// lexical check is exact enough in practice; anything subtler belongs in
// the thread-safety annotations or clang-tidy layers.
//
// Exit status: 0 = no findings, 1 = findings, 2 = usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Token {
  std::string text;
  int line = 0;
  bool is_ident = false;
};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct FileContent {
  std::string path;           // as reported in findings
  std::vector<Token> tokens;  // comments/strings/preprocessor stripped
  std::vector<std::string> raw_lines;  // for NOLINT suppression
};

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

// Tokenizes C++ source: identifiers/numbers and single-char punctuation
// (plus "::" as one token), with comments, string/char literals (including
// raw strings) and preprocessor directives dropped.
std::vector<Token> Lex(const std::string& src) {
  std::vector<Token> out;
  int line = 1;
  size_t i = 0;
  const size_t n = src.size();
  bool at_line_start = true;
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    if (at_line_start && c == '#') {
      // Preprocessor directive: skip to end of line, honoring backslash
      // continuations.
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      // Raw string literal R"delim( ... )delim".
      size_t d = i + 2;
      std::string delim;
      while (d < n && src[d] != '(') delim.push_back(src[d++]);
      const std::string close = ")" + delim + "\"";
      size_t end = src.find(close, d);
      if (end == std::string::npos) end = n;
      for (size_t k = i; k < std::min(n, end + close.size()); ++k) {
        if (src[k] == '\n') ++line;
      }
      i = std::min(n, end + close.size());
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          if (src[i + 1] == '\n') ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') ++line;  // unterminated; keep line counts sane
        ++i;
      }
      if (i < n) ++i;
      continue;
    }
    if (IsIdentChar(c)) {
      const size_t start = i;
      while (i < n && IsIdentChar(src[i])) ++i;
      out.push_back({src.substr(start, i - start), line, true});
      continue;
    }
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.push_back({"::", line, false});
      i += 2;
      continue;
    }
    out.push_back({std::string(1, c), line, false});
    ++i;
  }
  return out;
}

// True when `text` carries `marker` — as a whole word, so "NOLINT" does not
// match inside "NOLINTBEGIN" — naming `rule` (or the bare / "*" form).
bool MarkerMatches(const std::string& text, const char* marker,
                   const std::string& rule) {
  const std::string m(marker);
  size_t pos = 0;
  while ((pos = text.find(m, pos)) != std::string::npos) {
    const size_t open = pos + m.size();
    pos = open;
    // A longer marker ("NOLINT" inside "NOLINTNEXTLINE"/"NOLINTBEGIN"):
    // not this marker.
    if (open < text.size() && IsIdentChar(text[open])) continue;
    if (open >= text.size() || text[open] != '(') return true;  // bare form
    const size_t close = text.find(')', open);
    if (close == std::string::npos) continue;
    const std::string rules = text.substr(open + 1, close - open - 1);
    std::stringstream ss(rules);
    std::string item;
    while (std::getline(ss, item, ',')) {
      const size_t b = item.find_first_not_of(" \t");
      const size_t e = item.find_last_not_of(" \t");
      if (b == std::string::npos) continue;
      const std::string name = item.substr(b, e - b + 1);
      if (name == rule || name == "*") return true;
    }
  }
  return false;
}

// True when `line` (1-based) carries a NOLINT marker for `rule`, the
// previous line carries a NOLINTNEXTLINE marker for it, or the line sits
// inside a // NOLINTBEGIN(rule) ... // NOLINTEND(rule) block (clang-tidy's
// block form; bare NOLINTBEGIN opens a block for every rule).
bool Suppressed(const FileContent& file, int line, const std::string& rule) {
  if (line >= 1 && line <= static_cast<int>(file.raw_lines.size()) &&
      MarkerMatches(file.raw_lines[line - 1], "NOLINT", rule)) {
    return true;
  }
  if (line >= 2 && MarkerMatches(file.raw_lines[line - 2], "NOLINTNEXTLINE",
                                 rule)) {
    return true;
  }
  // Block form: count open BEGIN/END pairs for this rule above the finding.
  // An END on the finding line itself does not re-expose it (the block is
  // taken to cover its own closing line), matching clang-tidy.
  int depth = 0;
  const int last = std::min(line, static_cast<int>(file.raw_lines.size()));
  for (int l = 1; l <= last; ++l) {
    const std::string& text = file.raw_lines[l - 1];
    if (MarkerMatches(text, "NOLINTBEGIN", rule)) ++depth;
    if (l < line && MarkerMatches(text, "NOLINTEND", rule) && depth > 0) {
      --depth;
    }
  }
  return depth > 0;
}

void Emit(const FileContent& file, int line, const std::string& rule,
          const std::string& message, std::vector<Finding>* findings) {
  if (Suppressed(file, line, rule)) return;
  findings->push_back({file.path, line, rule, message});
}

// True when `tokens[idx]` ("[") opens a lambda introducer rather than a
// subscript or attribute: a subscript follows a value-ish token.
bool IsLambdaIntro(const std::vector<Token>& tokens, size_t idx) {
  if (idx == 0) return true;
  const Token& prev = tokens[idx - 1];
  if (prev.is_ident) {
    // `return [..]` / `case [..]` can't subscript; identifiers otherwise do.
    return prev.text == "return" || prev.text == "co_return" ||
           prev.text == "co_yield";
  }
  return prev.text != ")" && prev.text != "]";
}

// --- rule: pool-capture --------------------------------------------------

void CheckPoolCapture(const FileContent& file, std::vector<Finding>* findings) {
  const auto& t = file.tokens;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].is_ident ||
        (t[i].text != "Submit" && t[i].text != "SubmitToGroup")) {
      continue;
    }
    if (t[i + 1].text != "(") continue;
    int depth = 0;
    for (size_t j = i + 1; j < t.size(); ++j) {
      if (t[j].text == "(") ++depth;
      if (t[j].text == ")" && --depth == 0) break;
      if (t[j].text == "[" && j + 2 < t.size() && IsLambdaIntro(t, j) &&
          (t[j + 1].text == "&" || t[j + 1].text == "=") &&
          (t[j + 2].text == "]" || t[j + 2].text == ",")) {
        Emit(file, t[j].line, "pool-capture",
             "default-capture lambda submitted to the thread pool; capture "
             "explicitly — a plain-submitted task may outlive the submitting "
             "frame until the next Wait()",
             findings);
      }
    }
  }
}

// --- rule: value-get -----------------------------------------------------

bool ValueGetAllowed(const std::string& path) {
  const std::string base = fs::path(path).filename().string();
  // value.{h,cc} own the variant; status.h's Result<T> wraps its own.
  return base == "value.h" || base == "value.cc" || base == "status.h";
}

void CheckValueGet(const FileContent& file, std::vector<Finding>* findings) {
  if (ValueGetAllowed(file.path)) return;
  const auto& t = file.tokens;
  for (size_t i = 0; i + 3 < t.size(); ++i) {
    if (t[i].text == "std" && t[i + 1].text == "::" &&
        (t[i + 2].text == "get" || t[i + 2].text == "get_if") &&
        t[i + 3].text == "<") {
      Emit(file, t[i].line, "value-get",
           "raw std::" + t[i + 2].text +
               " outside value.h; go through the Value accessors so "
               "slot/register-kind mismatches stay impossible",
           findings);
    }
  }
}

// --- rule: rng-construction ---------------------------------------------

bool InEngineCode(const std::string& path) {
  for (const auto& part : fs::path(path)) {
    if (part == "exec" || part == "iolap") return true;
  }
  return false;
}

void CheckRngConstruction(const FileContent& file,
                          std::vector<Finding>* findings) {
  if (!InEngineCode(file.path)) return;
  const auto& t = file.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!t[i].is_ident || t[i].text != "Rng") continue;
    if (i > 0 && t[i - 1].text == "::") continue;        // qualified name
    if (i + 1 < t.size() && t[i + 1].text == "::") continue;  // Rng::ForLane
    const bool direct_temp =
        i + 1 < t.size() && (t[i + 1].text == "(" || t[i + 1].text == "{");
    const bool decl_with_args =
        i + 2 < t.size() && t[i + 1].is_ident &&
        (t[i + 2].text == "(" || t[i + 2].text == "{");
    if (direct_temp || decl_with_args) {
      Emit(file, t[i].line, "rng-construction",
           "direct Rng construction in engine code; derive per-lane "
           "generators with Rng::ForLane(seed, lane) so the stream is a "
           "pure function of (seed, lane), not of scheduling",
           findings);
    }
  }
}

// --- rule: guarded-mutable ----------------------------------------------

// Statement-level scan of class bodies: a class body that declares a
// Mutex / std::mutex member must annotate every `mutable` member with
// IOLAP_GUARDED_BY / IOLAP_PT_GUARDED_BY.
void CheckGuardedMutable(const FileContent& file,
                         std::vector<Finding>* findings) {
  struct Frame {
    bool class_body = false;
    bool has_mutex = false;
    // Member-level statements seen so far: (line of `mutable`, annotated).
    std::vector<std::pair<int, bool>> mutables;
    // Current statement accumulation.
    bool stmt_has_mutable = false;
    bool stmt_has_guard = false;
    bool stmt_has_paren = false;
    bool stmt_has_mutex = false;
    int stmt_mutable_line = 0;
  };
  const auto& t = file.tokens;
  std::vector<Frame> stack;
  auto end_stmt = [](Frame* f) {
    if (f->stmt_has_mutex) f->has_mutex = true;
    if (f->stmt_has_mutable) {
      f->mutables.emplace_back(f->stmt_mutable_line, f->stmt_has_guard);
    }
    f->stmt_has_mutable = f->stmt_has_guard = f->stmt_has_paren =
        f->stmt_has_mutex = false;
    f->stmt_mutable_line = 0;
  };
  for (size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.text == "{") {
      Frame frame;
      // A class body iff the span since the last `;` `{` `}` contains a
      // class/struct keyword that is not `enum class`/`enum struct`.
      for (size_t j = i; j-- > 0;) {
        const std::string& p = t[j].text;
        if (p == ";" || p == "{" || p == "}") break;
        if ((p == "class" || p == "struct") &&
            !(j > 0 && t[j - 1].text == "enum")) {
          frame.class_body = true;
          break;
        }
      }
      // Entering a nested scope from inside a member statement (inline
      // function body, default initializer): the statement continues, but
      // a function body means this member is a function — reset so its
      // locals don't count as members.
      stack.push_back(frame);
      continue;
    }
    if (tok.text == "}") {
      if (!stack.empty()) {
        Frame done = stack.back();
        stack.pop_back();
        if (done.class_body) {
          end_stmt(&done);
          if (done.has_mutex) {
            for (const auto& [line, annotated] : done.mutables) {
              if (!annotated) {
                Emit(file, line, "guarded-mutable",
                     "mutable member in a mutex-owning class without "
                     "IOLAP_GUARDED_BY; state which lock guards it (or "
                     "IOLAP_PT_GUARDED_BY for pointed-to data)",
                     findings);
              }
            }
          }
        }
        // A nested function body inside a class ends the enclosing member
        // statement (no trailing `;` required after `void f() { ... }`).
        if (!stack.empty() && stack.back().class_body &&
            stack.back().stmt_has_paren) {
          end_stmt(&stack.back());
        }
      }
      continue;
    }
    if (stack.empty() || !stack.back().class_body) continue;
    Frame* f = &stack.back();
    if (tok.text == ";") {
      end_stmt(f);
      continue;
    }
    if (tok.text == "(") f->stmt_has_paren = true;
    if (tok.is_ident) {
      if (tok.text == "mutable") {
        f->stmt_has_mutable = true;
        f->stmt_mutable_line = tok.line;
      } else if (tok.text == "IOLAP_GUARDED_BY" ||
                 tok.text == "IOLAP_PT_GUARDED_BY") {
        f->stmt_has_guard = true;
      } else if (tok.text == "Mutex") {
        f->stmt_has_mutex = true;
      } else if (tok.text == "mutex" || tok.text == "shared_mutex") {
        if (i >= 2 && t[i - 1].text == "::" && t[i - 2].text == "std") {
          f->stmt_has_mutex = true;
        }
      }
    }
  }
}

// --- rule: failpoint-name ------------------------------------------------

// The failpoint inventory is an X-macro inside a #define, which the
// tokenizer drops with the rest of the preprocessor — so this rule scans
// raw lines. Inside failpoint_names.h every quoted string in the
// IOLAP_FAILPOINT_NAMES block must be kebab-case and unique; any other
// file that defines IOLAP_FAILPOINT_NAMES is declaring a second inventory.
bool IsKebabCase(const std::string& name) {
  if (name.empty()) return false;
  bool prev_dash = true;  // leading dash/empty segment is invalid
  for (char c : name) {
    if (c == '-') {
      if (prev_dash) return false;
      prev_dash = true;
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      prev_dash = false;
    } else {
      return false;
    }
  }
  return !prev_dash;
}

void CheckFailpointNames(const FileContent& file,
                         std::vector<Finding>* findings) {
  const std::string base = fs::path(file.path).filename().string();
  const bool inventory = base == "failpoint_names.h";
  bool in_define = false;
  std::set<std::string> names;
  for (size_t i = 0; i < file.raw_lines.size(); ++i) {
    const std::string& line = file.raw_lines[i];
    const int lineno = static_cast<int>(i) + 1;
    if (!in_define) {
      const size_t hash = line.find_first_not_of(" \t");
      if (hash == std::string::npos || line[hash] != '#') continue;
      if (line.find("define", hash) == std::string::npos) continue;
      if (line.find("IOLAP_FAILPOINT_NAMES(") == std::string::npos) continue;
      if (!inventory) {
        Emit(file, lineno, "failpoint-name",
             "failpoint inventory defined outside failpoint_names.h; the "
             "engine has exactly one inventory header so spec names can "
             "never diverge",
             findings);
        return;
      }
      in_define = true;
    }
    if (in_define) {
      // Collect the quoted names on this continuation line.
      size_t pos = 0;
      while ((pos = line.find('"', pos)) != std::string::npos) {
        const size_t end = line.find('"', pos + 1);
        if (end == std::string::npos) break;
        const std::string name = line.substr(pos + 1, end - pos - 1);
        if (!IsKebabCase(name)) {
          Emit(file, lineno, "failpoint-name",
               "failpoint name \"" + name +
                   "\" is not kebab-case ([a-z0-9] words joined by '-'); "
                   "IOLAP_FAILPOINTS specs address failpoints by name",
               findings);
        } else if (!names.insert(name).second) {
          Emit(file, lineno, "failpoint-name",
               "duplicate failpoint name \"" + name +
                   "\"; names are the spec-level identity and must be unique",
               findings);
        }
        pos = end + 1;
      }
      // The X-macro block ends at the first line without a continuation.
      if (line.empty() || line.back() != '\\') in_define = false;
    }
  }
}

// --- rule: verifier-bypass -----------------------------------------------

// Engine code must obtain compiled programs through CompileVerified
// (exec/program_verifier.h) so every program is statically verified before
// it executes; a direct ExprProgram::Compile call is a seam around the
// verifier. The compiler's own files define Compile, the verifier wraps
// it, and tests/benchmarks deliberately poke the raw path.
bool VerifierBypassAllowed(const std::string& path) {
  const std::string base = fs::path(path).filename().string();
  if (base == "expr_program.h" || base == "expr_program.cc" ||
      base == "program_verifier.cc") {
    return true;
  }
  for (const auto& part : fs::path(path)) {
    if (part == "tests" || part == "bench" || part == "examples") return true;
  }
  return false;
}

void CheckVerifierBypass(const FileContent& file,
                         std::vector<Finding>* findings) {
  if (VerifierBypassAllowed(file.path)) return;
  const auto& t = file.tokens;
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].text == "ExprProgram" && t[i + 1].text == "::" &&
        t[i + 2].text == "Compile") {
      Emit(file, t[i].line, "verifier-bypass",
           "direct ExprProgram::Compile outside the verifier seam; obtain "
           "programs via CompileVerified (exec/program_verifier.h) so every "
           "compiled program is proven sound before execution",
           findings);
    }
  }
}

// --- rule: exchange-bypass -----------------------------------------------

// Shard state changes only through delivered exchange messages:
// ExchangeLayer::Ship verifies the checksum, pays the retry/backoff
// schedule, accounts the wire bytes, and only then calls
// ShardState::AbsorbExchangePayload. Any other caller is cross-shard state
// access that bypasses the wire — unmeasured, unchecksummed, and invisible
// to chaos schedules. The seam's own files define and deliver it;
// tests/benchmarks may poke it deliberately.
bool ExchangeBypassAllowed(const std::string& path) {
  const std::string base = fs::path(path).filename().string();
  if (base == "shard.h" || base == "shard.cc" || base == "exchange.cc") {
    return true;
  }
  for (const auto& part : fs::path(path)) {
    if (part == "tests" || part == "bench" || part == "examples") return true;
  }
  return false;
}

void CheckExchangeBypass(const FileContent& file,
                         std::vector<Finding>* findings) {
  if (ExchangeBypassAllowed(file.path)) return;
  const auto& t = file.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].text == "AbsorbExchangePayload") {
      Emit(file, t[i].line, "exchange-bypass",
           "direct ShardState::AbsorbExchangePayload outside the exchange "
           "seam; shard state mutates only via ExchangeLayer::Ship "
           "(shard/exchange.h) so every delivery is checksummed, retried "
           "and measured",
           findings);
    }
  }
}

// --- input gathering -----------------------------------------------------

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" ||
         ext == ".cxx";
}

std::string Normalize(const std::string& path) {
  std::error_code ec;
  fs::path canon = fs::weakly_canonical(path, ec);
  if (ec) canon = fs::path(path).lexically_normal();
  return canon.string();
}

// Minimal compile_commands.json reader: extracts "directory" and "file"
// from each entry, resolving relative files against their directory. Only
// the two fields the tool needs are parsed; everything else is skipped.
bool ReadCompDb(const std::string& path, std::vector<std::string>* files,
                std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open compilation database: " + path;
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  auto read_string = [&](size_t* pos, std::string* out) {
    // *pos points at the opening quote.
    out->clear();
    for (size_t k = *pos + 1; k < json.size(); ++k) {
      const char c = json[k];
      if (c == '\\' && k + 1 < json.size()) {
        const char e = json[++k];
        switch (e) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'u': k += 4; out->push_back('?'); break;  // not expected here
          default: out->push_back(e); break;
        }
        continue;
      }
      if (c == '"') {
        *pos = k + 1;
        return true;
      }
      out->push_back(c);
    }
    return false;
  };

  size_t pos = 0;
  int depth = 0;
  std::string dir, file, key;
  while (pos < json.size()) {
    const char c = json[pos];
    if (c == '"') {
      std::string s;
      if (!read_string(&pos, &s)) break;
      if (depth == 2 && key.empty()) {
        key = s;  // object key; value follows after ':'
      } else if (depth == 2) {
        if (key == "directory") dir = s;
        if (key == "file") file = s;
        key.clear();
      }
      continue;
    }
    if (c == '{' || c == '[') {
      ++depth;
      if (c == '{' && depth == 2) {
        dir.clear();
        file.clear();
      }
    } else if (c == '}' || c == ']') {
      if (c == '}' && depth == 2 && !file.empty()) {
        fs::path p(file);
        if (p.is_relative() && !dir.empty()) p = fs::path(dir) / p;
        files->push_back(p.string());
      }
      --depth;
    } else if (c == ':' && depth == 2) {
      // Non-string values (numbers, etc.) are skipped by the main loop.
    }
    ++pos;
  }
  return true;
}

void CollectDir(const fs::path& dir, std::vector<std::string>* files) {
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (it->is_regular_file(ec) && HasSourceExtension(it->path())) {
      files->push_back(it->path().string());
    }
  }
  std::sort(files->begin(), files->end());
}

int Usage() {
  std::cerr
      << "usage: iolap_lint [--compdb compile_commands.json] [--under DIR]\n"
         "                  [paths...]\n"
         "Paths may be files or directories (recursed for .h/.cc/.cpp).\n"
         "--under restricts compilation-database entries to a subtree.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::vector<std::string> compdb_files;
  std::vector<std::string> under;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--compdb") {
      if (++i >= argc) return Usage();
      std::string error;
      if (!ReadCompDb(argv[i], &compdb_files, &error)) {
        std::cerr << "iolap_lint: " << error << "\n";
        return 2;
      }
    } else if (arg == "--under") {
      if (++i >= argc) return Usage();
      under.push_back(Normalize(argv[i]));
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty() && compdb_files.empty()) return Usage();

  // Resolve the linted file set: compdb entries (subtree-filtered), plus
  // explicit files, plus directory walks; deduplicated.
  std::set<std::string> seen;
  std::vector<std::string> files;
  auto add = [&](const std::string& path) {
    const std::string norm = Normalize(path);
    if (seen.insert(norm).second) files.push_back(norm);
  };
  for (const std::string& f : compdb_files) {
    const std::string norm = Normalize(f);
    bool keep = under.empty();
    for (const std::string& u : under) {
      keep = keep || norm.rfind(u, 0) == 0;
    }
    if (keep) add(norm);
  }
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      std::vector<std::string> found;
      CollectDir(input, &found);
      for (const std::string& f : found) add(f);
    } else {
      add(input);
    }
  }

  std::vector<Finding> findings;
  int io_errors = 0;
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "iolap_lint: cannot read " << path << "\n";
      ++io_errors;
      continue;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    FileContent file;
    file.path = path;
    const std::string src = buffer.str();
    file.tokens = Lex(src);
    std::stringstream lines(src);
    std::string line;
    while (std::getline(lines, line)) file.raw_lines.push_back(line);

    CheckPoolCapture(file, &findings);
    CheckValueGet(file, &findings);
    CheckRngConstruction(file, &findings);
    CheckGuardedMutable(file, &findings);
    CheckFailpointNames(file, &findings);
    CheckVerifierBypass(file, &findings);
    CheckExchangeBypass(file, &findings);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  std::map<std::string, int> per_rule;
  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
    ++per_rule[f.rule];
  }
  std::cout << "iolap_lint: " << findings.size() << " finding(s)";
  if (!per_rule.empty()) {
    std::cout << " [";
    bool first = true;
    for (const auto& [rule, count] : per_rule) {
      if (!first) std::cout << " ";
      first = false;
      std::cout << rule << "=" << count;
    }
    std::cout << "]";
  }
  std::cout << " over " << files.size() << " file(s)\n";
  if (io_errors > 0) return 2;
  return findings.empty() ? 0 : 1;
}
